(* Crash-recoverable ingest service: WAL framing and torn-tail repair,
   checkpoint round-trips, recovery/idempotence, and the deterministic
   chaos sweep — an injected abort at every IO index of WAL append,
   checkpoint install and store put, each proving recover-to-last-
   acknowledged with no torn visible state. *)

module Registry = Telemetry.Registry

let fresh_dir () =
  let path = Filename.temp_file "critics-service" "" in
  Sys.remove path;
  Unix.mkdir path 0o755;
  path

let rec rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Unix.rmdir path
  | _ -> Sys.remove path

let with_dir f =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let app name = Option.get (Workload.Apps.find name)

let payload_of_counter name v =
  let reg = Registry.create () in
  Registry.add (Registry.counter reg name) v;
  Registry.to_bytes reg

(* ------------------------------------------------------------------ *)
(* WAL                                                                *)

let scan_exn path =
  match Service.Wal.scan path with
  | Ok s -> s
  | Error msg -> Alcotest.fail msg

let test_wal_roundtrip () =
  with_dir @@ fun dir ->
  let path = Filename.concat dir "wal.log" in
  let w = Service.Wal.open_writer path in
  Service.Wal.append w ~seq:1 ~id:"a" ~payload:"alpha";
  Service.Wal.append w ~seq:2 ~id:"b" ~payload:"";
  Service.Wal.append w ~seq:3 ~id:"" ~payload:"gamma";
  Service.Wal.close w;
  let s = scan_exn path in
  Alcotest.(check int) "no torn bytes" 0 s.torn_bytes;
  Alcotest.(check (list (triple int string string)))
    "records round-trip"
    [ (1, "a", "alpha"); (2, "b", ""); (3, "", "gamma") ]
    (List.map
       (fun r -> Service.Wal.(r.seq, r.id, r.payload))
       s.records)

let test_wal_torn_tail () =
  with_dir @@ fun dir ->
  let path = Filename.concat dir "wal.log" in
  let w = Service.Wal.open_writer path in
  Service.Wal.append w ~seq:1 ~id:"a" ~payload:"alpha";
  Service.Wal.close w;
  let whole = (Unix.stat path).Unix.st_size in
  (* Tear: half of a second record's bytes reach the disk. *)
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
  output_string oc "\255\255\255";
  close_out oc;
  let s = scan_exn path in
  Alcotest.(check int) "good record kept" 1 (List.length s.records);
  Alcotest.(check int) "tear measured" 3 s.torn_bytes;
  Alcotest.(check int) "good_bytes at record boundary" whole s.good_bytes;
  Service.Wal.truncate_to path s.good_bytes;
  let s = scan_exn path in
  Alcotest.(check int) "repaired" 0 s.torn_bytes;
  Alcotest.(check int) "record survives repair" 1 (List.length s.records)

let test_wal_corrupt_record_stops_scan () =
  with_dir @@ fun dir ->
  let path = Filename.concat dir "wal.log" in
  let w = Service.Wal.open_writer path in
  Service.Wal.append w ~seq:1 ~id:"a" ~payload:"alpha";
  let first_end = (Unix.stat path).Unix.st_size in
  Service.Wal.append w ~seq:2 ~id:"b" ~payload:"beta";
  Service.Wal.close w;
  (* Flip one payload byte of record 1: its digest no longer verifies,
     so the scan must stop there — record 2, though intact, is
     unreachable garbage behind a bad frame. *)
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
  ignore (Unix.lseek fd (first_end - 1) Unix.SEEK_SET);
  ignore (Unix.write_substring fd "X" 0 1);
  Unix.close fd;
  let s = scan_exn path in
  Alcotest.(check int) "scan stops at corruption" 0 (List.length s.records);
  Alcotest.(check bool) "corruption counted as torn" true (s.torn_bytes > 0)

let test_wal_bad_magic () =
  with_dir @@ fun dir ->
  let path = Filename.concat dir "wal.log" in
  Util.Atomic_io.write path "NOTAWAL0";
  match Service.Wal.scan path with
  | Ok _ -> Alcotest.fail "bad magic accepted"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Checkpoint                                                         *)

let test_checkpoint_roundtrip () =
  with_dir @@ fun dir ->
  let path = Filename.concat dir "ckpt.bin" in
  let reg = Registry.create () in
  Registry.add (Registry.counter reg "population/uploads") 7;
  Registry.observe (Registry.histogram reg "population/fanout") 12;
  let c =
    {
      Service.Checkpoint.seq = 42;
      ids = [ ("maps/u0001", 42); ("email/u0002", 41) ];
      registry = Registry.to_bytes reg;
    }
  in
  Service.Checkpoint.save path c;
  match Service.Checkpoint.load path with
  | Error msg -> Alcotest.fail msg
  | Ok None -> Alcotest.fail "checkpoint vanished"
  | Ok (Some c') ->
    Alcotest.(check int) "seq" 42 c'.Service.Checkpoint.seq;
    Alcotest.(check (list (pair string int)))
      "ids (sorted)"
      [ ("email/u0002", 41); ("maps/u0001", 42) ]
      c'.ids;
    Alcotest.(check string) "registry bytes" c.registry c'.registry

(* Ids are client-chosen arbitrary bytes.  The id table is
   length-framed, so ids containing newlines, colons, spaces or raw
   binary must round-trip — a '\n' id once made the loader fail and
   permanently wedged its shard directory. *)
let test_checkpoint_hostile_ids () =
  with_dir @@ fun dir ->
  let path = Filename.concat dir "ckpt.bin" in
  let ids =
    [ ("maps/u\n0001", 3); ("x:y z", 1); ("\n\n", 2); ("", 4); ("\x00\xff", 5) ]
  in
  Service.Checkpoint.save path
    { Service.Checkpoint.seq = 5; ids; registry = "" };
  match Service.Checkpoint.load path with
  | Error msg -> Alcotest.fail msg
  | Ok None -> Alcotest.fail "checkpoint vanished"
  | Ok (Some c) ->
    Alcotest.(check (list (pair string int)))
      "hostile ids round-trip (sorted)" (List.sort compare ids) c.ids

let test_checkpoint_corruption_is_loud () =
  with_dir @@ fun dir ->
  let path = Filename.concat dir "ckpt.bin" in
  Service.Checkpoint.save path
    { Service.Checkpoint.seq = 1; ids = [ ("x", 1) ]; registry = "" };
  let text = Util.Atomic_io.read_file path in
  let flipped = Bytes.of_string text in
  Bytes.set flipped (Bytes.length flipped - 1) '\255';
  Util.Atomic_io.write path (Bytes.to_string flipped);
  (match Service.Checkpoint.load path with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "flipped byte accepted");
  Alcotest.(check bool)
    "missing file is Ok None" true
    (Service.Checkpoint.load (Filename.concat dir "nope") = Ok None)

(* ------------------------------------------------------------------ *)
(* Engine                                                             *)

let ingest_exn eng ~id ~app ~payload =
  match Service.Engine.ingest eng ~id ~app ~payload with
  | Ok ack -> ack
  | Error msg -> Alcotest.fail msg

let test_engine_ingest_and_recover () =
  with_dir @@ fun dir ->
  let cfg = Service.Engine.config ~shards:2 ~checkpoint_every:3 dir in
  let eng, r0 = Service.Engine.open_ cfg in
  Alcotest.(check int) "fresh: nothing replayed" 0 r0.rec_replayed;
  for i = 1 to 10 do
    let ack =
      ingest_exn eng
        ~id:(Printf.sprintf "maps/u%04d" i)
        ~app:"maps"
        ~payload:(payload_of_counter "population/uploads" 1)
    in
    Alcotest.(check bool) "not a duplicate" false ack.ack_duplicate
  done;
  let bytes = Service.Engine.snapshot_bytes eng in
  Alcotest.(check int) "10 uploads" 10 (Service.Engine.uploads eng);
  Service.Engine.close eng;
  let eng2, r = Service.Engine.open_ cfg in
  Alcotest.(check int) "uploads survive" 10 r.rec_uploads;
  Alcotest.(check string)
    "state survives byte-for-byte" bytes
    (Service.Engine.snapshot_bytes eng2);
  Alcotest.(check bool)
    "mem finds an acked id" true
    (Service.Engine.mem eng2 ~id:"maps/u0007");
  let snap = Service.Engine.snapshot eng2 in
  Alcotest.(check int)
    "merge folded every delta" 10
    (Registry.counter_value (Registry.counter snap "population/uploads"));
  Service.Engine.close eng2

let test_engine_duplicate_acked_once () =
  with_dir @@ fun dir ->
  let cfg = Service.Engine.config ~shards:1 dir in
  let eng, _ = Service.Engine.open_ cfg in
  let payload = payload_of_counter "population/uploads" 1 in
  let a1 = ingest_exn eng ~id:"maps/u0001" ~app:"maps" ~payload in
  let a2 = ingest_exn eng ~id:"maps/u0001" ~app:"maps" ~payload in
  Alcotest.(check bool) "second is a duplicate" true a2.ack_duplicate;
  Alcotest.(check int) "same sequence" a1.ack_seq a2.ack_seq;
  Alcotest.(check int) "applied once" 1 (Service.Engine.uploads eng);
  Service.Engine.close eng;
  (* Dedup must survive a restart: the id table is durable state. *)
  let eng2, _ = Service.Engine.open_ cfg in
  let a3 = ingest_exn eng2 ~id:"maps/u0001" ~app:"maps" ~payload in
  Alcotest.(check bool) "duplicate across restart" true a3.ack_duplicate;
  Alcotest.(check int) "still applied once" 1 (Service.Engine.uploads eng2);
  Service.Engine.close eng2

let test_engine_rejects_garbage_payload () =
  with_dir @@ fun dir ->
  let eng, _ = Service.Engine.open_ (Service.Engine.config dir) in
  (match Service.Engine.ingest eng ~id:"x" ~app:"maps" ~payload:"not a registry" with
  | Ok _ -> Alcotest.fail "garbage acked"
  | Error _ -> ());
  Alcotest.(check int) "nothing applied" 0 (Service.Engine.uploads eng);
  Service.Engine.close eng

let test_engine_checkpoint_compacts_wal () =
  with_dir @@ fun dir ->
  let cfg = Service.Engine.config ~shards:1 ~checkpoint_every:1000 dir in
  let eng, _ = Service.Engine.open_ cfg in
  for i = 1 to 8 do
    ignore
      (ingest_exn eng
         ~id:(Printf.sprintf "maps/u%04d" i)
         ~app:"maps"
         ~payload:(payload_of_counter "population/uploads" 1))
  done;
  Service.Engine.checkpoint eng;
  Service.Engine.close eng;
  (* All eight records live in the checkpoint now; the WAL is empty, so
     recovery replays nothing yet reconstructs everything. *)
  let eng2, r = Service.Engine.open_ cfg in
  Alcotest.(check int) "nothing to replay" 0 r.rec_replayed;
  Alcotest.(check int) "everything recovered" 8 r.rec_uploads;
  Service.Engine.close eng2;
  match Service.Engine.fsck dir with
  | Error msg -> Alcotest.fail msg
  | Ok rep ->
    Alcotest.(check bool) "fsck strictly clean" true
      (Service.Engine.clean ~strict:true rep);
    Alcotest.(check int) "fsck sees the uploads" 8 rep.total_uploads

(* End-to-end regression: an id containing '\n' must survive the
   checkpoint/recover cycle — before the length-framed id parse, the
   first checkpoint holding such an id made the shard unopenable. *)
let test_engine_newline_id_recovers () =
  with_dir @@ fun dir ->
  let cfg = Service.Engine.config ~shards:1 dir in
  let hostile = "maps/u\n0001: x" in
  let payload = payload_of_counter "population/uploads" 1 in
  let eng, _ = Service.Engine.open_ cfg in
  ignore (ingest_exn eng ~id:hostile ~app:"maps" ~payload);
  Service.Engine.checkpoint eng;
  Service.Engine.close eng;
  let eng2, r = Service.Engine.open_ cfg in
  Alcotest.(check int) "upload survives checkpoint" 1 r.rec_uploads;
  Alcotest.(check bool) "hostile id found" true
    (Service.Engine.mem eng2 ~id:hostile);
  let a = ingest_exn eng2 ~id:hostile ~app:"maps" ~payload in
  Alcotest.(check bool) "still deduplicated" true a.ack_duplicate;
  Service.Engine.close eng2;
  match Service.Engine.fsck dir with
  | Error msg -> Alcotest.fail msg
  | Ok rep ->
    Alcotest.(check bool) "fsck strictly clean" true
      (Service.Engine.clean ~strict:true rep)

(* Oversized input is client-controlled: it must come back as [Error],
   and — the part that once failed — must not leave the shard mutex
   held, so the very next upload on the same shard still lands. *)
let test_engine_oversized_input_contained () =
  with_dir @@ fun dir ->
  let eng, _ =
    Service.Engine.open_ (Service.Engine.config ~shards:1 dir)
  in
  let payload = payload_of_counter "population/uploads" 1 in
  (match
     Service.Engine.ingest eng ~id:(String.make 70_000 'x') ~app:"maps"
       ~payload
   with
  | Ok _ -> Alcotest.fail "70kB id acked"
  | Error _ -> ());
  (match
     Service.Engine.ingest eng ~id:"big" ~app:"maps"
       ~payload:(String.make (16 * 1024 * 1024) 'p')
   with
  | Ok _ -> Alcotest.fail "16MiB payload acked"
  | Error _ -> ());
  let a = ingest_exn eng ~id:"maps/u0001" ~app:"maps" ~payload in
  Alcotest.(check bool) "shard still serves" false a.ack_duplicate;
  Alcotest.(check int) "only the valid upload applied" 1
    (Service.Engine.uploads eng);
  Service.Engine.close eng

(* The dedup retention contract: ids inside the window deduplicate,
   ids pruned out of it are applied as new, and the table stays
   bounded. *)
let test_engine_dedup_window () =
  with_dir @@ fun dir ->
  let cfg =
    Service.Engine.config ~shards:1 ~checkpoint_every:1000 ~dedup_window:4
      dir
  in
  let eng, _ = Service.Engine.open_ cfg in
  let payload = payload_of_counter "population/uploads" 1 in
  for i = 1 to 16 do
    let a =
      ingest_exn eng ~id:(Printf.sprintf "maps/u%02d" i) ~app:"maps" ~payload
    in
    Alcotest.(check bool) "fresh id is new" false a.ack_duplicate
  done;
  let recent = ingest_exn eng ~id:"maps/u16" ~app:"maps" ~payload in
  Alcotest.(check bool) "retry inside window deduplicates" true
    recent.ack_duplicate;
  let ancient = ingest_exn eng ~id:"maps/u01" ~app:"maps" ~payload in
  Alcotest.(check bool) "retry outside window re-applies" false
    ancient.ack_duplicate;
  Alcotest.(check bool) "table bounded by window + slack" true
    (Service.Engine.uploads eng <= 12);
  Service.Engine.close eng;
  (* The windowed table is what the checkpoint persists and recovery
     rebuilds. *)
  let eng2, _ = Service.Engine.open_ cfg in
  Alcotest.(check bool) "recent id survives restart" true
    (Service.Engine.mem eng2 ~id:"maps/u16");
  Alcotest.(check bool) "pruned id stays forgotten" false
    (Service.Engine.mem eng2 ~id:"maps/u02");
  Service.Engine.close eng2

let test_engine_shard_mismatch_is_loud () =
  with_dir @@ fun dir ->
  let eng, _ = Service.Engine.open_ (Service.Engine.config ~shards:2 dir) in
  Service.Engine.close eng;
  match Service.Engine.open_ (Service.Engine.config ~shards:3 dir) with
  | exception Failure _ -> ()
  | eng, _ ->
    Service.Engine.close eng;
    Alcotest.fail "resharding silently accepted"

(* ------------------------------------------------------------------ *)
(* Population                                                         *)

let test_population_deterministic () =
  let p = app "maps" in
  let u1 = Workload.Population.upload p ~user:3 in
  let u2 = Workload.Population.upload p ~user:3 in
  Alcotest.(check string) "same user, same payload" u1.payload u2.payload;
  Alcotest.(check string) "stable id" "Maps/u0003" u1.id;
  let u3 = Workload.Population.upload p ~user:4 in
  Alcotest.(check bool)
    "different users differ" true
    (u1.payload <> u3.payload);
  (match Registry.of_bytes u1.payload with
  | Error msg -> Alcotest.fail ("payload not a registry: " ^ msg)
  | Ok _ -> ());
  (* Jitter must always stay inside Profile.validate's envelope. *)
  for user = 0 to 99 do
    Workload.Profile.validate (Workload.Population.jitter p ~user)
  done

(* ------------------------------------------------------------------ *)
(* Chaos: abort at every IO index                                     *)

let small_uploads () =
  List.map
    (fun (u : Workload.Population.upload) ->
      { Service.Chaos.up_id = u.id; up_app = u.app; up_payload = u.payload })
    (Workload.Population.generate
       ~apps:[ app "maps"; app "email" ]
       ~users_per_app:3 ())

let test_chaos_sweep_full () =
  with_dir @@ fun dir ->
  let rep =
    Service.Chaos.sweep
      ~dir:(Filename.concat dir "chaos")
      ~shards:2 ~checkpoint_every:2 ~uploads:(small_uploads ()) ()
  in
  Alcotest.(check int)
    "every crash point exercised" rep.rep_ops
    (List.length rep.rep_cases);
  Alcotest.(check bool) "sweep hit real crashes" true (rep.rep_crashes > 0);
  Alcotest.(check bool)
    "sweep hit contained failures" true
    (rep.rep_contained > 0);
  if rep.rep_violations <> 0 then Alcotest.fail (Service.Chaos.render rep)

(* The qcheck angle: the contract must hold for arbitrary workload
   shapes, not just the hand-picked one — random app subsets, user
   counts and engine geometry, every crash point of each. *)
let chaos_qcheck =
  QCheck.Test.make ~count:6 ~name:"chaos sweep holds for arbitrary workloads"
    QCheck.(
      quad (int_range 1 3) (int_range 1 3) (int_range 1 3) (int_range 1 4))
    (fun (napps, users, shards, every) ->
      let apps =
        List.filteri (fun i _ -> i < napps) Workload.Apps.mobile
      in
      let uploads =
        List.map
          (fun (u : Workload.Population.upload) ->
            {
              Service.Chaos.up_id = u.id;
              up_app = u.app;
              up_payload = u.payload;
            })
          (Workload.Population.generate ~apps ~users_per_app:users ())
      in
      let dir = fresh_dir () in
      Fun.protect
        ~finally:(fun () -> rm_rf dir)
        (fun () ->
          let rep =
            Service.Chaos.sweep ~dir ~shards ~checkpoint_every:every
              ~max_cases:24 ~uploads ()
          in
          if rep.rep_violations <> 0 then
            QCheck.Test.fail_report (Service.Chaos.render rep);
          true))

(* Store.put under the same discipline: an abort at every IO index of
   an install must leave the store either without the entry (a plain
   miss) or with it intact — never with a corrupt visible entry. *)
let test_store_put_crash_points () =
  let k = Store.key ~kind:"chaos" [ "payload" ] in
  let payload = String.concat "/" (List.init 64 string_of_int) in
  (* Learn the op count from a fault-free install. *)
  let total =
    with_dir @@ fun dir ->
    let count = ref 0 in
    let inject ~op:_ =
      incr count;
      Util.Atomic_io.Proceed
    in
    let t = Store.open_dir ~inject dir in
    Store.add t k payload;
    Alcotest.(check bool) "fault-free install lands" true
      (Store.find t k <> None);
    !count
  in
  Alcotest.(check bool) "install has IO ops to abort" true (total > 0);
  for at = 0 to total - 1 do
    with_dir @@ fun dir ->
    let fired = ref false in
    let count = ref 0 in
    let inject ~op:_ =
      let n = !count in
      incr count;
      if n = at && not !fired then begin
        fired := true;
        if at mod 2 = 0 then Util.Atomic_io.Crash else Util.Atomic_io.Torn 5
      end
      else Util.Atomic_io.Proceed
    in
    let t = Store.open_dir ~inject dir in
    (try Store.add t k payload
     with Util.Atomic_io.Injected_crash _ -> ());
    (* The next process: orphan sweep, then lookup. *)
    let t2 = Store.open_dir dir in
    (match Store.find t2 k with
    | Some got ->
      Alcotest.(check string)
        (Printf.sprintf "crash point %d: visible entry is intact" at)
        payload got
    | None -> ());
    Alcotest.(check int)
      (Printf.sprintf "crash point %d: no corrupt visible state" at)
      0 (Store.stats t2).Store.corrupt
  done

let () =
  Alcotest.run "service"
    [
      ( "wal",
        [
          Alcotest.test_case "roundtrip" `Quick test_wal_roundtrip;
          Alcotest.test_case "torn tail" `Quick test_wal_torn_tail;
          Alcotest.test_case "corrupt record" `Quick
            test_wal_corrupt_record_stops_scan;
          Alcotest.test_case "bad magic" `Quick test_wal_bad_magic;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "roundtrip" `Quick test_checkpoint_roundtrip;
          Alcotest.test_case "hostile ids" `Quick test_checkpoint_hostile_ids;
          Alcotest.test_case "corruption is loud" `Quick
            test_checkpoint_corruption_is_loud;
        ] );
      ( "engine",
        [
          Alcotest.test_case "ingest and recover" `Quick
            test_engine_ingest_and_recover;
          Alcotest.test_case "duplicate acked once" `Quick
            test_engine_duplicate_acked_once;
          Alcotest.test_case "rejects garbage" `Quick
            test_engine_rejects_garbage_payload;
          Alcotest.test_case "checkpoint compacts" `Quick
            test_engine_checkpoint_compacts_wal;
          Alcotest.test_case "newline id recovers" `Quick
            test_engine_newline_id_recovers;
          Alcotest.test_case "oversized input contained" `Quick
            test_engine_oversized_input_contained;
          Alcotest.test_case "dedup window" `Quick test_engine_dedup_window;
          Alcotest.test_case "shard mismatch" `Quick
            test_engine_shard_mismatch_is_loud;
        ] );
      ( "population",
        [
          Alcotest.test_case "deterministic" `Quick
            test_population_deterministic;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "abort at every IO index" `Slow
            test_chaos_sweep_full;
          QCheck_alcotest.to_alcotest chaos_qcheck;
          Alcotest.test_case "store put crash points" `Quick
            test_store_put_crash_points;
        ] );
    ]
