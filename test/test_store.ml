(* Prepared-context store: key invalidation, corruption fallback,
   crash-orphan sweep, LRU resident-context bound, warm-harness reuse,
   and the allocation-free simulator-core contract this PR's perf work
   rests on. *)

let fresh_dir () =
  let path = Filename.temp_file "critics-store" "" in
  Sys.remove path;
  Unix.mkdir path 0o755;
  path

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

let with_store f =
  let dir = fresh_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () -> f dir (Store.open_dir dir))

let app name = Option.get (Workload.Apps.find name)

(* ------------------------------------------------------------------ *)
(* Keys                                                               *)

let test_key_deterministic () =
  let k1 = Store.key ~kind:"blob" [ "a"; "bc" ]
  and k2 = Store.key ~kind:"blob" [ "a"; "bc" ] in
  Alcotest.(check string)
    "same inputs, same digest" (Store.key_digest k1) (Store.key_digest k2)

let test_key_framing () =
  (* length framing: part boundaries must not alias *)
  let k1 = Store.key ~kind:"blob" [ "ab"; "c" ]
  and k2 = Store.key ~kind:"blob" [ "a"; "bc" ]
  and k3 = Store.key ~kind:"blob" [ "abc" ] in
  let d1 = Store.key_digest k1
  and d2 = Store.key_digest k2
  and d3 = Store.key_digest k3 in
  Alcotest.(check bool) "ab|c <> a|bc" true (d1 <> d2);
  Alcotest.(check bool) "ab|c <> abc" true (d1 <> d3)

let test_key_kind_and_code_version () =
  let d kind cv = Store.key_digest (Store.key ~code_version:cv ~kind [ "x" ]) in
  Alcotest.(check bool) "kind changes digest" true (d "a" "v1" <> d "b" "v1");
  Alcotest.(check bool)
    "code version changes digest" true
    (d "a" "v1" <> d "a" "v2")

let test_context_key_sensitivity () =
  let acrobat = app "Acrobat" in
  let base = Store.key_digest (Critics.Run.context_key acrobat) in
  let again = Store.key_digest (Critics.Run.context_key acrobat) in
  Alcotest.(check string) "stable across calls" base again;
  (* every preparation parameter and the profile bytes must invalidate *)
  let changed =
    [
      ( "profile bytes",
        Store.key_digest
          (Critics.Run.context_key { acrobat with seed = acrobat.seed + 1 }) );
      ("instrs", Store.key_digest (Critics.Run.context_key ~instrs:7 acrobat));
      ("sample", Store.key_digest (Critics.Run.context_key ~sample:3 acrobat));
      ( "profile_window",
        Store.key_digest (Critics.Run.context_key ~profile_window:64 acrobat) );
      ( "threshold",
        Store.key_digest (Critics.Run.context_key ~threshold:9.5 acrobat) );
      ( "profile_fraction",
        Store.key_digest (Critics.Run.context_key ~profile_fraction:0.5 acrobat)
      );
    ]
  in
  List.iter
    (fun (what, d) ->
      Alcotest.(check bool) (what ^ " invalidates") true (d <> base))
    changed

let test_config_bytes_invalidate () =
  (* the harness keys simulation results on a digest of the marshalled
     Config.t: any field change must produce a different store key *)
  let fp (c : Pipeline.Config.t) = Digest.string (Marshal.to_string c []) in
  let base = Pipeline.Config.table_i in
  let tweaked = { base with rob = base.rob + 1 } in
  let d c = Store.key_digest (Store.key ~kind:"stats" [ "ctx"; "IC+"; fp c ]) in
  Alcotest.(check bool)
    "Config.t field change invalidates" true
    (d base <> d tweaked);
  Alcotest.(check string) "equal configs agree" (d base) (d { base with rob = base.rob })

(* ------------------------------------------------------------------ *)
(* Entries                                                            *)

let test_roundtrip_bytes () =
  with_store (fun _dir st ->
      let k = Store.key ~kind:"blob" [ "payload-1" ] in
      let payload = String.init 4096 (fun i -> Char.chr (i * 31 land 0xff)) in
      Alcotest.(check (option string)) "cold miss" None (Store.find st k);
      Store.add st k payload;
      Alcotest.(check (option string))
        "hit is byte-identical" (Some payload) (Store.find st k);
      let s = Store.stats st in
      Alcotest.(check int) "one miss" 1 s.misses;
      Alcotest.(check int) "one hit" 1 s.hits;
      Alcotest.(check int) "one write" 1 s.writes;
      Alcotest.(check int) "no corruption" 0 s.corrupt)

let test_fuzzed_program_roundtrip () =
  (* round-trip property over fuzzed programs: store-served bytes
     rebuild a structurally identical program for arbitrary genomes *)
  with_store (fun _dir st ->
      for seed = 0 to 24 do
        let p = Workload.Fuzz.program_of_seed seed in
        let bytes = Marshal.to_string p [] in
        let k = Store.key ~kind:"program" [ "fuzz"; string_of_int seed ] in
        Store.add st k bytes;
        match Store.find st k with
        | None -> Alcotest.failf "seed %d: stored program missing" seed
        | Some b ->
          let p' : Prog.Program.t = Marshal.from_string b 0 in
          Alcotest.(check string)
            (Printf.sprintf "seed %d rebuilds identically" seed)
            (Digest.string bytes)
            (Digest.string (Marshal.to_string p' []))
      done)

let test_corruption_falls_back () =
  with_store (fun dir st ->
      let k = Store.key ~kind:"blob" [ "to-corrupt" ] in
      Store.add st k "precious bytes";
      let path = Filename.concat (Filename.concat dir "blob") (Store.key_digest k) in
      Alcotest.(check bool) "entry on disk" true (Sys.file_exists path);
      (* flip a payload byte in place *)
      let fd = Unix.openfile path [ Unix.O_WRONLY ] 0 in
      ignore (Unix.lseek fd (-3) Unix.SEEK_END);
      ignore (Unix.write_substring fd "X" 0 1);
      Unix.close fd;
      Alcotest.(check (option string))
        "corrupt entry reads as miss" None (Store.find st k);
      Alcotest.(check int) "counted as corrupt" 1 (Store.stats st).corrupt;
      Alcotest.(check bool) "corrupt entry removed" false (Sys.file_exists path);
      (* ...but not destroyed: it moved to the morgue for post-mortems *)
      Alcotest.(check int) "quarantined for post-mortem" 1
        (List.length (Store.quarantined st));
      (* recompute-and-add recovers *)
      Store.add st k "precious bytes";
      Alcotest.(check (option string))
        "recovers after re-add" (Some "precious bytes") (Store.find st k))

let corrupt_in_place dir k =
  let path =
    Filename.concat (Filename.concat dir "blob") (Store.key_digest k)
  in
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0 in
  ignore (Unix.lseek fd (-2) Unix.SEEK_END);
  ignore (Unix.write_substring fd "X" 0 1);
  Unix.close fd

let test_quarantine_bounded_and_invisible () =
  let dir = fresh_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let st = Store.open_dir ~quarantine_limit:3 dir in
      (* Corrupt five distinct entries; the morgue must hold only the
         three newest. *)
      for i = 1 to 5 do
        let k = Store.key ~kind:"blob" [ string_of_int i ] in
        Store.add st k "payload payload";
        corrupt_in_place dir k;
        Alcotest.(check (option string))
          "corrupt entry misses" None (Store.find st k)
      done;
      Alcotest.(check int) "morgue bounded at the limit" 3
        (List.length (Store.quarantined st));
      Alcotest.(check int) "five counted corrupt" 5 (Store.stats st).corrupt;
      (* The morgue is invisible to cache accounting and clearing. *)
      Alcotest.(check int) "no visible entries" 0 (Store.entry_count st);
      Alcotest.(check int) "nothing to clear" 0 (Store.clear st);
      Alcotest.(check int) "clear spares the morgue" 3
        (List.length (Store.quarantined st));
      (* A reopened store still sees the quarantined files. *)
      let st2 = Store.open_dir dir in
      Alcotest.(check int) "morgue survives reopen" 3
        (List.length (Store.quarantined st2)))

let test_version_mismatch_misses () =
  with_store (fun _dir st ->
      let k_old = Store.key ~code_version:"build-1" ~kind:"blob" [ "x" ] in
      let k_new = Store.key ~code_version:"build-2" ~kind:"blob" [ "x" ] in
      Store.add st k_old "old artifact";
      Alcotest.(check (option string))
        "new code version misses old entry" None (Store.find st k_new);
      Alcotest.(check (option string))
        "old key still hits" (Some "old artifact") (Store.find st k_old))

let test_clear_and_sizes () =
  with_store (fun _dir st ->
      Store.add st (Store.key ~kind:"a" [ "1" ]) "xx";
      Store.add st (Store.key ~kind:"b" [ "2" ]) "yyyy";
      Alcotest.(check int) "two entries" 2 (Store.entry_count st);
      Alcotest.(check bool) "bytes counted" true (Store.total_bytes st > 6);
      Alcotest.(check int) "clear removes both" 2 (Store.clear st);
      Alcotest.(check int) "empty after clear" 0 (Store.entry_count st))

(* ------------------------------------------------------------------ *)
(* Crash-orphan sweep                                                 *)

let test_store_sweeps_orphans () =
  let dir = fresh_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let sub = Filename.concat dir "context" in
      Unix.mkdir sub 0o755;
      let plant path =
        let oc = open_out path in
        output_string oc "half-written";
        close_out oc
      in
      let orphan_top = Filename.concat dir "dead.tmp"
      and orphan_sub = Filename.concat sub "dead.tmp"
      and survivor = Filename.concat sub "0123456789abcdef" in
      plant orphan_top;
      plant orphan_sub;
      plant survivor;
      let st = Store.open_dir dir in
      Alcotest.(check bool) "top orphan swept" false (Sys.file_exists orphan_top);
      Alcotest.(check bool) "kind orphan swept" false (Sys.file_exists orphan_sub);
      Alcotest.(check bool) "non-tmp survives" true (Sys.file_exists survivor);
      ignore st)

let test_db_io_sweeps_orphans () =
  let dir = fresh_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let orphan = Filename.concat dir "profile.db.tmp" in
      let oc = open_out orphan in
      output_string oc "torn write";
      close_out oc;
      Alcotest.(check int) "one orphan swept" 1 (Profiler.Db_io.sweep_tmp dir);
      Alcotest.(check bool) "orphan gone" false (Sys.file_exists orphan);
      Alcotest.(check int) "idempotent" 0 (Profiler.Db_io.sweep_tmp dir))

(* ------------------------------------------------------------------ *)
(* Prepared-context reuse                                             *)

let small_instrs = 2_000

let ctx_digest (ctx : Critics.Run.app_context) =
  Digest.string
    (Marshal.to_string (ctx.program, ctx.seed, ctx.path, ctx.event_count, ctx.db) [])

let test_prepare_warm_identical () =
  with_store (fun _dir st ->
      let cold = Critics.Run.prepare ~store:st ~instrs:small_instrs (app "Acrobat") in
      Alcotest.(check bool) "cold run wrote" true ((Store.stats st).writes > 0);
      let warm = Critics.Run.prepare ~store:st ~instrs:small_instrs (app "Acrobat") in
      Alcotest.(check bool) "warm run hit" true ((Store.stats st).hits > 0);
      Alcotest.(check string) "same fingerprint" cold.ckey warm.ckey;
      Alcotest.(check string)
        "store-served context bit-identical" (ctx_digest cold) (ctx_digest warm))

let test_transform_served_from_store () =
  with_store (fun _dir st ->
      let cold = Critics.Run.prepare ~store:st ~instrs:small_instrs (app "Email") in
      let p_cold = Critics.Run.transformed cold Critics.Scheme.Critic in
      Alcotest.(check int) "cold ran the compiler" 1 (Critics.Run.transform_count cold);
      let warm = Critics.Run.prepare ~store:st ~instrs:small_instrs (app "Email") in
      let p_warm = Critics.Run.transformed warm Critics.Scheme.Critic in
      Alcotest.(check int)
        "warm skipped the compiler" 0 (Critics.Run.transform_count warm);
      Alcotest.(check string) "identical transformed program"
        (Digest.string (Marshal.to_string p_cold []))
        (Digest.string (Marshal.to_string p_warm [])))

let test_harness_warm_stats () =
  with_store (fun _dir st ->
      let stats h =
        Experiments.Harness.stats h (app "Acrobat") Critics.Scheme.Critic
      in
      let h1 = Experiments.Harness.create ~instrs:small_instrs ~jobs:1 ~store:st () in
      let s1 = stats h1 in
      let writes_after_cold = (Store.stats st).writes in
      Alcotest.(check bool) "cold harness wrote" true (writes_after_cold > 0);
      let h2 = Experiments.Harness.create ~instrs:small_instrs ~jobs:1 ~store:st () in
      let s2 = stats h2 in
      Alcotest.(check bool) "warm harness hit" true ((Store.stats st).hits > 0);
      Alcotest.(check int)
        "no new writes on warm run" writes_after_cold (Store.stats st).writes;
      Alcotest.(check string) "bit-identical stats"
        (Digest.string (Marshal.to_string s1 []))
        (Digest.string (Marshal.to_string s2 [])))

let test_lru_context_cap () =
  let apps = [ "Acrobat"; "Email"; "Youtube"; "Angrybirds" ] in
  with_store (fun _dir st ->
      let h =
        Experiments.Harness.create ~instrs:small_instrs ~jobs:1 ~store:st
          ~context_cap:2 ()
      in
      let digests =
        List.map (fun n -> ctx_digest (Experiments.Harness.context h (app n))) apps
      in
      Alcotest.(check bool)
        "resident bounded by cap" true
        (Experiments.Harness.resident_contexts h <= 2);
      Alcotest.(check bool)
        "evictions happened" true
        (Experiments.Harness.context_evictions h >= 2);
      (* evicted contexts come back transparently — and identically *)
      List.iter2
        (fun n d ->
          Alcotest.(check string)
            (n ^ " reloads identically") d
            (ctx_digest (Experiments.Harness.context h (app n))))
        apps digests;
      Alcotest.(check bool)
        "still bounded after reloads" true
        (Experiments.Harness.resident_contexts h <= 2))

(* ------------------------------------------------------------------ *)
(* Allocation-free windowed core                                      *)

let test_window_loop_allocation_free () =
  (* The per-cycle loop must be GC-silent: minor allocation for a run is
     a setup constant plus a miss-bounded residue, not O(cycles).  Run
     the same recorded trace at 1x and 4x length — setup is identical,
     so the delta difference is the per-event cost.  The bound (0.5
     words/event) leaves room for the miss-driven Hashtbl bookkeeping
     while failing loudly if any per-cycle allocation returns. *)
  let ctx = Critics.Run.prepare ~instrs:20_000 (app "Acrobat") in
  let trace = Critics.Run.trace_of ctx Critics.Scheme.Baseline in
  let big = Array.concat [ trace; trace; trace; trace ] in
  let cfg = Pipeline.Config.table_i in
  let run tr =
    ignore
      (Pipeline.Cpu.run_stream cfg (fun () -> Prog.Trace.Stream.of_trace tr))
  in
  run trace;
  (* warm code paths *)
  let measure tr =
    let g0 = Gc.minor_words () in
    run tr;
    Gc.minor_words () -. g0
  in
  let d1 = measure trace in
  let d4 = measure big in
  let extra_events = 3 * Array.length trace in
  let per_event = (d4 -. d1) /. float_of_int extra_events in
  if per_event >= 0.5 then
    Alcotest.failf
      "window loop allocates %.3f minor words per event (1x=%.0f 4x=%.0f over \
       %d extra events); the core is no longer allocation-free"
      per_event d1 d4 extra_events

let () =
  Alcotest.run "store"
    [
      ( "keys",
        [
          Alcotest.test_case "deterministic" `Quick test_key_deterministic;
          Alcotest.test_case "length framing" `Quick test_key_framing;
          Alcotest.test_case "kind and code version" `Quick
            test_key_kind_and_code_version;
          Alcotest.test_case "context key sensitivity" `Quick
            test_context_key_sensitivity;
          Alcotest.test_case "config bytes invalidate" `Quick
            test_config_bytes_invalidate;
        ] );
      ( "entries",
        [
          Alcotest.test_case "byte-identical roundtrip" `Quick
            test_roundtrip_bytes;
          Alcotest.test_case "fuzzed program roundtrip" `Quick
            test_fuzzed_program_roundtrip;
          Alcotest.test_case "corruption falls back" `Quick
            test_corruption_falls_back;
          Alcotest.test_case "quarantine bounded and invisible" `Quick
            test_quarantine_bounded_and_invisible;
          Alcotest.test_case "version mismatch misses" `Quick
            test_version_mismatch_misses;
          Alcotest.test_case "clear and sizes" `Quick test_clear_and_sizes;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "store sweeps orphans" `Quick
            test_store_sweeps_orphans;
          Alcotest.test_case "db_io sweeps orphans" `Quick
            test_db_io_sweeps_orphans;
        ] );
      ( "reuse",
        [
          Alcotest.test_case "prepare warm identical" `Quick
            test_prepare_warm_identical;
          Alcotest.test_case "transform served from store" `Quick
            test_transform_served_from_store;
          Alcotest.test_case "harness warm stats" `Quick test_harness_warm_stats;
          Alcotest.test_case "lru context cap" `Quick test_lru_context_cap;
        ] );
      ( "alloc",
        [
          Alcotest.test_case "window loop allocation-free" `Quick
            test_window_loop_allocation_free;
        ] );
    ]
