(* Tests for the supervision layer: fault containment, retry with
   bounded backoff, quarantine, fuel and wall-clock deadlines, the
   batch journal, and the end-to-end acceptance property — a seeded
   fault plan over the full 26-app batch produces exactly the planned
   failures while every surviving artifact is bit-identical to a
   fault-free run, at jobs = 1 and jobs = 4. *)

module H = Experiments.Harness
module Fault = Workload.Fault

let test_instrs = 2_000

let mk_harness ?(jobs = 1) () = H.create ~instrs:test_instrs ~jobs ()

(* A fast policy for tests: no backoff sleeps. *)
let policy = H.default_policy

let app_names profiles = List.map (fun (p : Workload.Profile.t) -> p.name) profiles

let small_apps n =
  List.filteri (fun i _ -> i < n) Workload.Apps.mobile

let report_for batch app =
  List.find (fun (r : H.job_report) -> r.report_app = app) batch.H.reports

let outcome_kind (o : H.outcome) =
  Option.map (fun (e : Util.Err.t) -> e.kind) (H.outcome_err o)

let stats_digest st = Digest.to_hex (Digest.string (Marshal.to_string st []))

(* ------------------------- fault plan ------------------------------ *)

let test_plan_deterministic () =
  let apps = app_names Workload.Apps.mobile in
  let p1 = Fault.plan ~seed:42 ~raise_fatal:2 ~stall:1 ~corrupt_db:1 apps in
  let p2 = Fault.plan ~seed:42 ~raise_fatal:2 ~stall:1 ~corrupt_db:1 apps in
  Alcotest.(check (list (pair string string)))
    "same seed, same victims"
    (List.map (fun (a, x) -> (a, Fault.action_name x)) (Fault.victims p1))
    (List.map (fun (a, x) -> (a, Fault.action_name x)) (Fault.victims p2));
  let p3 = Fault.plan ~seed:43 ~raise_fatal:2 ~stall:1 ~corrupt_db:1 apps in
  Alcotest.(check bool) "different seed, different victims" false
    (Fault.victims p1 = Fault.victims p3);
  Alcotest.(check int) "victim count" 4 (List.length (Fault.victims p1));
  (* victims are distinct apps *)
  let names = List.map fst (Fault.victims p1) in
  Alcotest.(check int) "victims distinct"
    (List.length names)
    (List.length (List.sort_uniq String.compare names));
  Alcotest.check_raises "too many victims rejected"
    (Invalid_argument "Fault.plan: 3 victims requested from 2 candidates")
    (fun () -> ignore (Fault.plan ~seed:0 ~raise_fatal:3 [ "a"; "b" ]))

(* ------------------------- retry / quarantine ---------------------- *)

let test_retry_then_succeed () =
  let apps = small_apps 3 in
  let victim = (List.hd apps).name in
  let faults =
    Fault.plan ~seed:5 ~raise_transient:1 ~transient_failures:2
      [ victim ]
  in
  let h = mk_harness () in
  let batch =
    H.run_batch_supervised ~policy ~faults h
      (List.map (fun p -> H.job p Critics.Scheme.Critic) apps)
  in
  Alcotest.(check int) "all jobs complete" 3 batch.H.completed;
  Alcotest.(check int) "three rounds (two retries)" 3 batch.H.rounds;
  let r = report_for batch victim in
  Alcotest.(check bool) "victim completed" true
    (r.report_outcome = H.Completed);
  Alcotest.(check int) "victim needed three attempts" 3 r.report_attempts;
  List.iter
    (fun (p : Workload.Profile.t) ->
      if p.name <> victim then
        Alcotest.(check int) "non-victim ran once" 1
          (report_for batch p.name).report_attempts)
    apps

let test_retries_exhausted () =
  let apps = small_apps 2 in
  let victim = (List.hd apps).name in
  (* fails more times than the policy grants attempts *)
  let faults =
    Fault.plan ~seed:5 ~raise_transient:1 ~transient_failures:10 [ victim ]
  in
  let h = mk_harness () in
  let batch =
    H.run_batch_supervised
      ~policy:{ policy with retries = 1; quarantine_after = 10 }
      ~faults h
      (List.map (fun p -> H.job p Critics.Scheme.Critic) apps)
  in
  let r = report_for batch victim in
  (match r.report_outcome with
  | H.Failed e ->
    Alcotest.(check bool) "kind transient" true (e.kind = Util.Err.Transient);
    Alcotest.(check int) "attempts recorded" 2 e.attempts;
    Alcotest.(check bool) "app in context" true (e.app = Some victim)
  | o -> Alcotest.failf "expected Failed, got %s" (H.outcome_name o));
  Alcotest.(check int) "bystander completed" 1 batch.H.completed

let test_quarantine_after_n () =
  let apps = small_apps 3 in
  let victim = (List.hd apps).name in
  let faults =
    Fault.plan ~seed:9 ~raise_transient:1 ~transient_failures:100 [ victim ]
  in
  let h = mk_harness () in
  (* generous retries, tight quarantine: the app must be cut off by the
     quarantine threshold, not by retry exhaustion *)
  let batch =
    H.run_batch_supervised
      ~policy:{ policy with retries = 50; quarantine_after = 2 }
      ~faults h
      (List.map (fun p -> H.job p Critics.Scheme.Critic) apps)
  in
  let r = report_for batch victim in
  (match r.report_outcome with
  | H.Quarantined e ->
    Alcotest.(check bool) "classified cancelled or transient" true
      (e.kind = Util.Err.Transient || e.kind = Util.Err.Cancelled)
  | o -> Alcotest.failf "expected Quarantined, got %s" (H.outcome_name o));
  Alcotest.(check int) "quarantined at the threshold" 2 r.report_attempts;
  Alcotest.(check int) "others completed" 2 batch.H.completed

let test_fuel_deadline () =
  let apps = small_apps 2 in
  let h = mk_harness () in
  let batch =
    H.run_batch_supervised
      ~policy:{ policy with fuel = Some 64 }
      h
      (List.map (fun p -> H.job p Critics.Scheme.Critic) apps)
  in
  Alcotest.(check int) "nothing completes under 64 cycles of fuel" 0
    batch.H.completed;
  List.iter
    (fun (r : H.job_report) ->
      Alcotest.(check (option bool)) "timeout kind" (Some true)
        (Option.map
           (fun k -> k = Util.Err.Timeout)
           (outcome_kind r.report_outcome));
      Alcotest.(check int) "timeouts are not retried" 1 r.report_attempts)
    batch.H.failures

let test_wall_deadline () =
  let apps = small_apps 3 in
  let h = mk_harness () in
  let batch =
    H.run_batch_supervised
      ~policy:{ policy with wall_deadline_s = Some 0.0 }
      h
      (List.map (fun p -> H.job p Critics.Scheme.Critic) apps)
  in
  Alcotest.(check int) "no job ran" 0 batch.H.completed;
  Alcotest.(check int) "no dispatch round" 0 batch.H.rounds;
  List.iter
    (fun (r : H.job_report) ->
      match r.report_outcome with
      | H.Skipped e ->
        Alcotest.(check bool) "cancelled" true (e.kind = Util.Err.Cancelled)
      | o -> Alcotest.failf "expected Skipped, got %s" (H.outcome_name o))
    batch.H.reports

let test_backoff_deterministic_and_bounded () =
  let p =
    { policy with backoff_ms = 10.0; backoff_max_ms = 35.0; backoff_seed = 7 }
  in
  let d1 = H.backoff_delay_s p ~round:1 in
  let d2 = H.backoff_delay_s p ~round:2 in
  Alcotest.(check (float 0.0)) "same round, same delay" d1
    (H.backoff_delay_s p ~round:1);
  List.iter
    (fun d ->
      Alcotest.(check bool) "positive" true (d > 0.0);
      Alcotest.(check bool) "capped" true (d <= 0.035))
    [ d1; d2; H.backoff_delay_s p ~round:8 ];
  Alcotest.(check (float 0.0)) "zero base disables waiting" 0.0
    (H.backoff_delay_s { p with backoff_ms = 0.0 } ~round:3)

(* ------------------------------ journal ---------------------------- *)

let entry id ms : Experiments.Journal.entry =
  {
    entry_id = id;
    wall_ms = ms;
    minor_words = 789.0;
    major_words = 123.0;
    top_heap_words = 456;
  }

let test_journal_roundtrip () =
  let e = entry "tab1" 17.5 in
  (match Experiments.Journal.of_line (Experiments.Journal.to_line e) with
  | Some e' ->
    Alcotest.(check string) "id" e.entry_id e'.entry_id;
    Alcotest.(check (float 0.11)) "wall" e.wall_ms e'.wall_ms;
    Alcotest.(check (float 0.1)) "minor" e.minor_words e'.minor_words;
    Alcotest.(check int) "heap" e.top_heap_words e'.top_heap_words
  | None -> Alcotest.fail "journal line does not parse back");
  (* Pre-minor_words journal lines still parse (resume across the
     version boundary), defaulting the missing field to 0. *)
  (match
     Experiments.Journal.of_line
       "{ \"id\": \"tab1\", \"wall_ms\": 17.5, \"major_words\": 123, \
        \"top_heap_words\": 456 }"
   with
  | Some e' ->
    Alcotest.(check string) "legacy id" "tab1" e'.entry_id;
    Alcotest.(check (float 0.1)) "legacy minor defaults" 0.0 e'.minor_words
  | None -> Alcotest.fail "legacy journal line does not parse");
  Alcotest.(check bool) "garbage line rejected" true
    (Experiments.Journal.of_line "{ not json" = None)

let test_journal_file_and_truncation () =
  let path = Filename.temp_file "critics" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      Experiments.Journal.reset path;
      Alcotest.(check (list string)) "fresh journal is empty" []
        (Experiments.Journal.completed_ids path);
      Experiments.Journal.append path (entry "tab1" 1.0);
      Experiments.Journal.append path (entry "tab3" 2.0);
      Experiments.Journal.append path (entry "tab1" 3.0);
      (* simulate a kill mid-append: a truncated trailing line *)
      let oc = open_out_gen [ Open_append ] 0o644 path in
      output_string oc "{ \"id\": \"fig";
      close_out oc;
      Alcotest.(check int) "parseable entries survive" 3
        (List.length (Experiments.Journal.load path));
      Alcotest.(check (list string)) "ids deduped, first-seen order"
        [ "tab1"; "tab3" ]
        (Experiments.Journal.completed_ids path);
      Experiments.Journal.reset path;
      Alcotest.(check bool) "reset removes the journal" false
        (Sys.file_exists path))

(* The torn final line a crash mid-append leaves must be tolerated and
   counted — resume proceeds with the parseable prefix — while blank
   lines stay invisible (not torn, not entries). *)
let test_journal_torn_tail_reported () =
  let path = Filename.temp_file "critics" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      Experiments.Journal.append path (entry "tab1" 1.0);
      Experiments.Journal.append path (entry "tab3" 2.0);
      let oc = open_out_gen [ Open_append ] 0o644 path in
      output_string oc "\n{ \"id\": \"fig2\", \"wall_m";
      close_out oc;
      let entries, skipped = Experiments.Journal.load_report path in
      Alcotest.(check int) "torn line counted" 1 skipped;
      Alcotest.(check (list string)) "prefix survives" [ "tab1"; "tab3" ]
        (List.map (fun e -> e.Experiments.Journal.entry_id) entries);
      Alcotest.(check (list string)) "completed_ids tolerates the tear"
        [ "tab1"; "tab3" ]
        (Experiments.Journal.completed_ids path))

(* --------------------- end-to-end containment ---------------------- *)

(* The acceptance property: a seeded plan covering >= 3 fault kinds over
   the full application set completes reporting exactly the injected
   failures — with app context — and every surviving artifact is
   bit-identical (stats digest) to a fault-free run, at jobs = 1 and
   jobs = 4. *)
let containment_check ~jobs ~reference =
  let apps = Workload.Apps.all in
  let faults =
    Fault.plan ~seed:11 ~raise_transient:1 ~transient_failures:1 ~raise_fatal:1
      ~stall:1 ~corrupt_db:1 (app_names apps)
  in
  let persistent =
    List.filter_map
      (fun (app, a) ->
        match a with Fault.Raise_transient _ -> None | _ -> Some (app, a))
      (Fault.victims faults)
  in
  let h = mk_harness ~jobs () in
  let batch =
    H.run_batch_supervised ~policy ~faults h
      (List.map (fun p -> H.job p Critics.Scheme.Critic) apps)
  in
  (* exactly the persistent victims fail... *)
  Alcotest.(check (list string))
    (Printf.sprintf "jobs=%d: failures are exactly the persistent victims"
       jobs)
    (List.sort String.compare (List.map fst persistent))
    (List.sort String.compare
       (List.map (fun (r : H.job_report) -> r.report_app) batch.H.failures));
  (* ...with the right classification and context *)
  List.iter
    (fun (app, action) ->
      let r = report_for batch app in
      let kind = outcome_kind r.report_outcome in
      let expect =
        match action with
        | Fault.Raise_fatal -> Util.Err.Fatal
        | Fault.Stall -> Util.Err.Timeout
        | Fault.Corrupt_db -> Util.Err.Corrupt_input
        | Fault.Raise_transient _ -> assert false
      in
      Alcotest.(check (option string))
        (app ^ " classified")
        (Some (Util.Err.kind_name expect))
        (Option.map Util.Err.kind_name kind);
      match H.outcome_err r.report_outcome with
      | Some e ->
        Alcotest.(check (option string)) "err carries app" (Some app) e.app;
        Alcotest.(check (option string)) "err carries scheme" (Some "critic")
          e.scheme
      | None -> Alcotest.fail "failure without error")
    persistent;
  (* the transient victim recovered on retry *)
  List.iter
    (fun (app, a) ->
      match a with
      | Fault.Raise_transient _ ->
        let r = report_for batch app in
        Alcotest.(check bool) (app ^ " recovered") true
          (r.report_outcome = H.Completed);
        Alcotest.(check bool) (app ^ " was retried") true
          (r.report_attempts >= 2)
      | _ -> ())
    (Fault.victims faults);
  (* surviving artifacts are bit-identical to the fault-free run *)
  let survivors =
    List.filter (fun (p : Workload.Profile.t) ->
        not (List.mem_assoc p.name persistent))
      apps
  in
  List.iter
    (fun (p : Workload.Profile.t) ->
      Alcotest.(check string)
        (Printf.sprintf "jobs=%d: %s digest matches fault-free run" jobs
           p.name)
        (List.assoc p.name reference)
        (stats_digest (H.stats h p Critics.Scheme.Critic)))
    survivors;
  Alcotest.(check int)
    (Printf.sprintf "jobs=%d: completion count" jobs)
    (List.length apps - List.length persistent)
    batch.H.completed

let test_containment_end_to_end () =
  (* fault-free reference digests, computed once *)
  let apps = Workload.Apps.all in
  let h0 = mk_harness ~jobs:2 () in
  let batch0 =
    H.run_batch_supervised ~policy h0
      (List.map (fun p -> H.job p Critics.Scheme.Critic) apps)
  in
  Alcotest.(check int) "fault-free batch completes everything"
    (List.length apps) batch0.H.completed;
  Alcotest.(check int) "fault-free batch takes one round" 1 batch0.H.rounds;
  let reference =
    List.map
      (fun (p : Workload.Profile.t) ->
        (p.name, stats_digest (H.stats h0 p Critics.Scheme.Critic)))
      apps
  in
  containment_check ~jobs:1 ~reference;
  containment_check ~jobs:4 ~reference

(* ----------------------------- qcheck ------------------------------ *)

(* For any seed, a supervised batch over a seeded fault plan reports
   exactly the planned persistent failures and completes the
   complement. *)
let prop_planned_failures_exact =
  QCheck.Test.make ~name:"supervised batch fails exactly the planned victims"
    ~count:6 QCheck.small_nat
    (fun seed ->
      let apps = small_apps 6 in
      let faults =
        Fault.plan ~seed ~raise_fatal:1 ~stall:1 (app_names apps)
      in
      let h = mk_harness () in
      let batch =
        H.run_batch_supervised ~policy ~faults h
          (List.map (fun p -> H.job p Critics.Scheme.Baseline) apps)
      in
      let failed =
        List.sort String.compare
          (List.map (fun (r : H.job_report) -> r.report_app) batch.H.failures)
      in
      failed = List.sort String.compare (List.map fst (Fault.victims faults))
      && batch.H.completed = List.length apps - 2)

let () =
  Alcotest.run "supervision"
    [
      ( "fault-plan",
        [ Alcotest.test_case "deterministic" `Quick test_plan_deterministic ] );
      ( "policy",
        [
          Alcotest.test_case "retry then succeed" `Quick test_retry_then_succeed;
          Alcotest.test_case "retries exhausted" `Quick test_retries_exhausted;
          Alcotest.test_case "quarantine after N" `Quick test_quarantine_after_n;
          Alcotest.test_case "fuel deadline" `Quick test_fuel_deadline;
          Alcotest.test_case "wall deadline" `Quick test_wall_deadline;
          Alcotest.test_case "backoff deterministic" `Quick
            test_backoff_deterministic_and_bounded;
        ] );
      ( "journal",
        [
          Alcotest.test_case "line roundtrip" `Quick test_journal_roundtrip;
          Alcotest.test_case "file + truncated tail" `Quick
            test_journal_file_and_truncation;
          Alcotest.test_case "torn tail reported" `Quick
            test_journal_torn_tail_reported;
        ] );
      ( "containment",
        [
          Alcotest.test_case "end to end, jobs 1 and 4" `Slow
            test_containment_end_to_end;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_planned_failures_exact ] );
    ]
