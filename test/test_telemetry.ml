(* Telemetry observability tests.

   Three contracts are locked down here:

   - the {e accounting contract}: the probe's windowed cycle-attribution
     samples, summed per population, reproduce the simulator's own
     [Stats.stage_summary] field for field, for every seed application
     and scheme, at every harness parallelism width;
   - {e observational purity}: attaching a probe (and a trace ring)
     changes neither the returned [Stats.t] nor the commit log, on
     arbitrary fuzzed programs;
   - the {e Chrome trace schema}: exported trace JSON parses, validates
     (per-track monotonic timestamps, paired async spans), survives
     ring truncation, and a fixed seed reproduces the committed golden
     trace byte for byte. *)

module H = Experiments.Harness
module P = Telemetry.Probe
module R = Telemetry.Registry
module CT = Telemetry.Chrome_trace
module F = Workload.Fuzz

let check = Alcotest.(check bool)

(* ------------------------ accounting contract --------------------- *)

let smoke_instrs = 2_500
let probe_window = 256

let schemes =
  [
    Critics.Scheme.Baseline; Critics.Scheme.Critic; Critics.Scheme.Opp16_critic;
  ]

let all_jobs () =
  List.concat_map
    (fun p -> List.map (fun s -> H.job p s) schemes)
    Workload.Apps.all

let stage_labels =
  [
    "count"; "fetch_i"; "fetch_rd"; "decode"; "rename"; "issue_wait";
    "execute"; "commit_wait";
  ]

let totals_fields (t : P.stage_totals) =
  [
    t.count; t.fetch_i; t.fetch_rd; t.decode; t.rename; t.issue_wait;
    t.execute; t.commit_wait;
  ]

let summary_fields (s : Pipeline.Stats.stage_summary) =
  [
    s.count; s.fetch_i; s.fetch_rd; s.decode; s.rename; s.issue_wait;
    s.execute; s.commit_wait;
  ]

let sample_fields (w : P.window_sample) =
  [
    w.w_count; w.w_fetch_i; w.w_fetch_rd; w.w_decode; w.w_rename;
    w.w_issue_wait; w.w_execute; w.w_commit_wait;
  ]

let labeled fields = List.combine stage_labels fields

(* Sum of the flushed window samples of one population. *)
let sum_samples probe pop =
  List.fold_left
    (fun acc w ->
      if w.P.w_pop = pop then List.map2 ( + ) acc (sample_fields w) else acc)
    [ 0; 0; 0; 0; 0; 0; 0; 0 ]
    (P.samples probe)

let check_contract h =
  List.iter
    (fun (profile : Workload.Profile.t) ->
      List.iter
        (fun scheme ->
          let st = H.stats h profile scheme in
          let probe =
            match H.probe_for h profile scheme with
            | Some p -> p
            | None ->
              Alcotest.failf "%s/%s: no probe memoized" profile.name
                (Critics.Scheme.name scheme)
          in
          let pops =
            [
              (P.All, st.Pipeline.Stats.stage_all);
              (P.Critical, st.Pipeline.Stats.stage_critical);
              (P.Chain, st.Pipeline.Stats.stage_chain);
            ]
          in
          List.iter
            (fun (pop, summary) ->
              let label what =
                Printf.sprintf "%s/%s/%s: %s" profile.name
                  (Critics.Scheme.name scheme) (P.population_name pop) what
              in
              let want = summary_fields summary in
              Alcotest.(check (list (pair string int)))
                (label "probe totals = stage summary")
                (labeled want)
                (labeled (totals_fields (P.totals probe pop)));
              Alcotest.(check (list (pair string int)))
                (label "window samples sum to stage summary")
                (labeled want)
                (labeled (sum_samples probe pop)))
            pops)
        schemes)
    Workload.Apps.all

(* Every application x scheme at the smoke budget, through the batch
   harness at width 1 and width 4.  Both widths must satisfy the
   accounting contract, and their merged registries must be
   byte-identical — histogram merge is order-insensitive, so job
   scheduling order cannot leak into the aggregate. *)
let test_accounting_contract () =
  let mk jobs =
    let h = H.create ~instrs:smoke_instrs ~jobs ~telemetry:probe_window () in
    H.run_batch h (all_jobs ());
    h
  in
  let h1 = mk 1 in
  let h4 = mk 4 in
  check_contract h1;
  check_contract h4;
  Alcotest.(check string) "jobs=1 and jobs=4 merged registries agree"
    (R.to_json (H.telemetry_registry h1))
    (R.to_json (H.telemetry_registry h4));
  Alcotest.(check string) "job-scoped aggregate matches the full registry"
    (R.to_json (H.telemetry_registry h1))
    (R.to_json (H.telemetry_registry_for h1 (all_jobs ())))

(* --------------------- observational purity ----------------------- *)

let digest_stats (st : Pipeline.Stats.t) =
  Digest.to_hex (Digest.string (Marshal.to_string st []))

(* One fuzzed run: stats digest + commit-log digest, with runtime
   invariants armed (which, with a probe attached, also asserts the
   probe's totals against the simulator's accumulators). *)
let run_fuzzed ?probe spec =
  let program = F.build spec in
  let path = Prog.Walk.path_for_instrs program ~seed:17 ~instrs:300 in
  let b = Buffer.create 512 in
  let on_commit (c : Pipeline.Cpu.commit) =
    Buffer.add_string b (string_of_int c.Pipeline.Cpu.commit_seq);
    Buffer.add_char b ':';
    Buffer.add_string b (string_of_int c.Pipeline.Cpu.commit_cycle);
    Buffer.add_char b ';'
  in
  let st =
    Pipeline.Cpu.run_stream ~checks:true ?probe ~on_commit
      Pipeline.Config.table_i (fun () ->
        Prog.Trace.Stream.of_program program ~seed:17 path)
  in
  (digest_stats st, Digest.to_hex (Digest.string (Buffer.contents b)))

let prop_probe_is_observational =
  QCheck.Test.make
    ~name:"telemetry on vs off: identical stats and commit log" ~count:50
    F.arbitrary (fun spec ->
      let off = run_fuzzed spec in
      let probe =
        P.create ~window:64 ~trace:(CT.create ~capacity:1024 ()) ()
      in
      let on = run_fuzzed ~probe spec in
      if off <> on then
        QCheck.Test.fail_reportf
          "stats or commit log diverged with a probe attached"
      else true)

(* --------------------- registry merge algebra --------------------- *)

let reg_of_chunk vs =
  let r = R.create () in
  let h = R.histogram r "h" in
  let c = R.counter r "events" in
  let g = R.gauge r "peak" in
  List.iter
    (fun v ->
      R.observe h v;
      R.incr c;
      R.set_max g v)
    vs;
  r

let merge_all order chunks =
  let into = R.create () in
  List.iter (fun i -> R.merge_into ~into (List.nth chunks i)) order;
  R.to_json into

let prop_merge_order_insensitive =
  QCheck.Test.make
    ~name:"registry merge is associative and order-insensitive" ~count:100
    QCheck.(small_list (small_list small_nat))
    (fun chunks_vs ->
      let chunks = List.map reg_of_chunk chunks_vs in
      let n = List.length chunks in
      let fwd = merge_all (List.init n Fun.id) chunks in
      let rev = merge_all (List.rev (List.init n Fun.id)) chunks in
      (* Regroup: odd-indexed chunks meet in an intermediate registry
         that is folded in last — a different association of the same
         multiset of merges. *)
      let assoc =
        let into = R.create () in
        let mid = R.create () in
        List.iteri
          (fun i r ->
            R.merge_into ~into:(if i mod 2 = 0 then into else mid) r)
          chunks;
        R.merge_into ~into mid;
        R.to_json into
      in
      fwd = rev && fwd = assoc)

(* ------------------------ chrome trace schema --------------------- *)

(* Fixed-seed trace: Music under the CritIC scheme exercises every
   event kind the exporter knows — stage counter tracks, chain async
   spans — deterministically. *)
let build_fixed_trace () =
  let ctx =
    Critics.Run.prepare ~instrs:2_000
      (Option.get (Workload.Apps.find "Music"))
  in
  let tr = CT.create ~capacity:8192 () in
  let probe = P.create ~window:64 ~trace:tr () in
  ignore (Critics.Run.stats ~probe ctx Critics.Scheme.Critic);
  tr

let test_trace_schema () =
  let tr = build_fixed_trace () in
  let json = CT.to_json tr in
  Alcotest.(check int) "nothing dropped at this capacity" 0 (CT.dropped tr);
  (match CT.validate json with
  | Ok n -> Alcotest.(check int) "validated event count" (CT.length tr) n
  | Error msg -> Alcotest.failf "trace does not validate: %s" msg);
  let t = Util.Json.parse json in
  let events = Util.Json.(arr (field "traceEvents" t)) in
  let phs =
    List.map (fun e -> Util.Json.(str (field "ph" e))) events
  in
  check "has counter samples" true (List.mem "C" phs);
  check "has async begins" true (List.mem "b" phs);
  check "has async ends" true (List.mem "e" phs);
  (* the deterministic printer is a parse fixpoint on its own output *)
  Alcotest.(check string) "parse . print is the identity" json
    (Util.Json.to_string t)

let test_validator_rejects () =
  let reject label text =
    match CT.validate text with
    | Ok _ -> Alcotest.failf "%s: accepted invalid trace" label
    | Error _ -> ()
  in
  let wrap evs = {|{"traceEvents":[|} ^ String.concat "," evs ^ "]}" in
  reject "garbage" "not json at all";
  reject "missing traceEvents" "{}";
  reject "unknown phase"
    (wrap [ {|{"name":"x","ph":"Z","ts":0,"pid":1,"tid":1}|} ]);
  reject "counter time goes backwards"
    (wrap
       [
         {|{"name":"s","ph":"C","ts":5,"pid":1,"tid":1,"args":{"value":1}}|};
         {|{"name":"s","ph":"C","ts":3,"pid":1,"tid":1,"args":{"value":1}}|};
       ]);
  reject "unmatched async begin"
    (wrap [ {|{"name":"c","cat":"chain","ph":"b","id":1,"ts":0,"pid":1,"tid":1}|} ]);
  reject "async end without begin"
    (wrap [ {|{"name":"c","cat":"chain","ph":"e","id":1,"ts":4,"pid":1,"tid":1}|} ]);
  reject "async end before its begin"
    (wrap
       [
         {|{"name":"c","cat":"chain","ph":"b","id":1,"ts":9,"pid":1,"tid":1}|};
         {|{"name":"c","cat":"chain","ph":"e","id":1,"ts":4,"pid":1,"tid":1}|};
       ]);
  match
    CT.validate
      (wrap
         [
           {|{"name":"c","cat":"chain","ph":"b","id":1,"ts":2,"pid":1,"tid":1}|};
           {|{"name":"c","cat":"chain","ph":"e","id":1,"ts":7,"pid":1,"tid":1}|};
         ])
  with
  | Ok n -> Alcotest.(check int) "well-formed span accepted" 2 n
  | Error msg -> Alcotest.failf "rejected a valid span: %s" msg

(* Overflowing the ring must stay well-formed: oldest events fall off,
   [dropped] counts them, and an async end whose begin was truncated is
   filtered out of the export so the result still validates. *)
let test_ring_truncation () =
  let tr = CT.create ~capacity:16 () in
  CT.async_begin tr ~ts:0 ~name:"chain-0" ~id:0;
  for ts = 1 to 100 do
    CT.counter tr ~ts ~name:"stage/execute" ~value:ts
  done;
  CT.async_end tr ~ts:200 ~name:"chain-0" ~id:0;
  check "ring is bounded" true (CT.length tr <= 16);
  check "overflow counted" true (CT.dropped tr > 0);
  match CT.validate (CT.to_json tr) with
  | Ok n -> check "truncated trace still validates" true (n > 0)
  | Error msg -> Alcotest.failf "truncated trace invalid: %s" msg

let golden_path = "data/golden_trace.json"

(* The fixed-seed trace must reproduce the committed golden file byte
   for byte ([write_file] appends one newline to the compact JSON).
   Regenerate after an intentional exporter change with
   [CRITICS_REGEN_GOLDEN=/abs/path/to/test/data/golden_trace.json]. *)
let test_golden_trace () =
  let tr = build_fixed_trace () in
  let json = CT.to_json tr ^ "\n" in
  match Sys.getenv_opt "CRITICS_REGEN_GOLDEN" with
  | Some path when path <> "" ->
    CT.write_file tr path;
    Printf.printf "regenerated %s (%d bytes)\n" path (String.length json)
  | _ ->
    let ic = open_in_bin golden_path in
    let want =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    Alcotest.(check int)
      "golden trace size" (String.length want) (String.length json);
    check "golden trace bytes identical" true (String.equal want json);
    (match CT.validate want with
    | Ok n -> check "golden file validates" true (n > 0)
    | Error msg -> Alcotest.failf "golden file invalid: %s" msg)

let () =
  Alcotest.run "telemetry"
    [
      ( "accounting contract",
        [
          Alcotest.test_case "windows sum to stage summaries (26 apps, jobs 1 and 4)"
            `Slow test_accounting_contract;
        ] );
      ( "purity",
        [
          QCheck_alcotest.to_alcotest prop_probe_is_observational;
          QCheck_alcotest.to_alcotest prop_merge_order_insensitive;
        ] );
      ( "chrome trace",
        [
          Alcotest.test_case "schema" `Quick test_trace_schema;
          Alcotest.test_case "validator rejects malformed traces" `Quick
            test_validator_rejects;
          Alcotest.test_case "ring truncation" `Quick test_ring_truncation;
          Alcotest.test_case "golden trace byte-identical" `Quick
            test_golden_trace;
        ] );
    ]
