(* Tests for the compiler passes: hoisting legality/application, Thumb
   conversion, and the CritIC instrumentation pass. *)

module I = Isa.Instr
module Op = Isa.Opcode
module B = Prog.Block
module P = Prog.Program
module H = Transform.Hoist
module T = Transform.Thumb
module CP = Transform.Critic_pass

let r = Isa.Reg.r

let mk uid ?dst ?(srcs = []) ?cond ?mem op =
  I.make ~uid ~opcode:op ?dst ~srcs ?cond ?mem ()

let block body = B.make ~id:0 ~func:0 ~body ~term:(B.Jump 0)

(* body where a chain 0 -> 2 -> 4 is interleaved with leaves *)
let chain_block () =
  block
    [|
      mk 0 ~dst:(r 0) Op.Alu;
      mk 1 ~dst:(r 6) ~srcs:[ r 0 ] Op.Alu;
      mk 2 ~dst:(r 1) ~srcs:[ r 0 ] Op.Alu;
      mk 3 ~dst:(r 6) ~srcs:[ r 1 ] Op.Alu;
      mk 4 ~dst:(r 2) ~srcs:[ r 1 ] Op.Alu;
      mk 5 ~dst:(r 6) ~srcs:[ r 2 ] Op.Alu;
    |]

(* The RAW producer of each source register per instruction — the
   dataflow semantics a legal hoist must preserve. *)
let producer_map (b : B.t) =
  let last = Array.make Isa.Reg.count (-1) in
  Array.to_list b.body
  |> List.concat_map (fun (ins : I.t) ->
         let reads =
           List.map
             (fun src -> (ins.uid, Isa.Reg.index src, last.(Isa.Reg.index src)))
             (I.regs_read ins)
         in
         List.iter
           (fun d -> last.(Isa.Reg.index d) <- ins.uid)
           (I.regs_written ins);
         reads)
  |> List.sort compare

let test_legal_hoist () =
  let b = chain_block () in
  Alcotest.(check bool) "chain is hoistable" true (H.legal b [ 0; 2; 4 ])

let test_illegal_raw () =
  (* member 2 reads r6, which skipped instr 1 writes *)
  let b =
    block
      [|
        mk 0 ~dst:(r 0) Op.Alu;
        mk 1 ~dst:(r 6) ~srcs:[ r 0 ] Op.Alu;
        mk 2 ~dst:(r 1) ~srcs:[ r 6 ] Op.Alu;
      |]
  in
  Alcotest.(check bool) "raw dependence blocks hoist" false (H.legal b [ 0; 2 ])

let test_illegal_war () =
  (* member 2 writes r0, which skipped instr 1 reads *)
  let b =
    block
      [|
        mk 0 ~dst:(r 1) Op.Alu;
        mk 1 ~dst:(r 6) ~srcs:[ r 0 ] Op.Alu;
        mk 2 ~dst:(r 0) ~srcs:[ r 1 ] Op.Alu;
      |]
  in
  Alcotest.(check bool) "war blocks hoist" false (H.legal b [ 0; 2 ])

let test_illegal_memory () =
  let mem = { I.region = 3; stride = 8; working_set = 64; randomness = 0.0 } in
  let b =
    block
      [|
        mk 0 ~dst:(r 0) Op.Alu;
        mk 1 ~srcs:[ r 0 ] ~mem Op.Store;
        mk 2 ~dst:(r 1) ~srcs:[ r 0 ] ~mem Op.Load;
      |]
  in
  Alcotest.(check bool) "load cannot pass same-region store" false
    (H.legal b [ 0; 2 ])

let test_memory_different_regions_ok () =
  let mem_a = { I.region = 3; stride = 8; working_set = 64; randomness = 0.0 } in
  let mem_b = { mem_a with I.region = 4 } in
  let b =
    block
      [|
        mk 0 ~dst:(r 0) Op.Alu;
        mk 1 ~srcs:[ r 0 ] ~mem:mem_a Op.Store;
        mk 2 ~dst:(r 1) ~srcs:[ r 0 ] ~mem:mem_b Op.Load;
      |]
  in
  Alcotest.(check bool) "distinct regions never alias" true (H.legal b [ 0; 2 ])

let test_hoist_apply () =
  let b = chain_block () in
  let b' = H.apply b [ 0; 2; 4 ] in
  let uids = Array.to_list (Array.map (fun (i : I.t) -> i.uid) b'.B.body) in
  Alcotest.(check (list int)) "members contiguous, others in order"
    [ 0; 2; 4; 1; 3; 5 ] uids;
  Alcotest.(check (list (triple int int int))) "dataflow preserved"
    (producer_map b) (producer_map b')

let test_hoist_rejects_illegal () =
  let b =
    block [| mk 0 ~dst:(r 0) Op.Alu; mk 1 ~dst:(r 6) ~srcs:[ r 0 ] Op.Alu;
             mk 2 ~dst:(r 1) ~srcs:[ r 6 ] Op.Alu |]
  in
  Alcotest.check_raises "apply refuses illegal"
    (Invalid_argument "Hoist.apply: illegal or malformed hoist") (fun () ->
      ignore (H.apply b [ 0; 2 ]))

(* ------------------------------ thumb ----------------------------- *)

let test_convert_run () =
  let run = [ mk 0 ~dst:(r 0) Op.Alu; mk 1 ~dst:(r 1) ~srcs:[ r 0 ] Op.Alu ] in
  let uid = ref 100 in
  let fresh_uid () = incr uid; !uid in
  let out, report = T.convert_run ~fresh_uid run in
  Alcotest.(check int) "cdp + 2 instrs" 3 (List.length out);
  Alcotest.(check int) "converted" 2 report.T.instrs_converted;
  Alcotest.(check int) "one cdp" 1 report.T.cdp_inserted;
  (match out with
  | cdp :: rest ->
    Alcotest.(check bool) "first is cdp" true (cdp.I.opcode = Op.Cdp_switch);
    Alcotest.(check int) "cdp count" 2 cdp.I.cdp_count;
    List.iter
      (fun (i : I.t) ->
        Alcotest.(check bool) "thumb encoded" true (i.encoding = I.Thumb16))
      rest
  | [] -> Alcotest.fail "empty output")

let test_convert_long_run_splits () =
  let run = List.init 12 (fun i -> mk i ~dst:(r (i mod 8)) Op.Alu) in
  let uid = ref 100 in
  let fresh_uid () = incr uid; !uid in
  let out, report = T.convert_run ~fresh_uid run in
  Alcotest.(check int) "two cdps for 12 instrs" 2 report.T.cdp_inserted;
  Alcotest.(check int) "total out" 14 (List.length out)

let test_opp16_min_run () =
  (* runs of 2 are skipped by opp16 but taken by compress *)
  let body =
    [|
      mk 0 ~dst:(r 0) Op.Alu;
      mk 1 ~dst:(r 1) Op.Alu;
      mk 2 ~dst:(r 12) Op.Alu; (* obstacle: high register *)
      mk 3 ~dst:(r 2) Op.Alu;
      mk 4 ~dst:(r 3) Op.Alu;
      mk 5 ~dst:(r 4) Op.Alu;
    |]
  in
  let p = P.make ~entry:0 ~blocks:[ block body ] in
  let _, opp = T.opp16 p in
  Alcotest.(check int) "opp16 converts only the >=3 run" 3
    opp.T.instrs_converted;
  let _, comp = T.compress p in
  Alcotest.(check int) "compress takes both runs" 5 comp.T.instrs_converted

let test_opp16_skips_unconvertible () =
  let body =
    [| mk 0 ~cond:I.Ne ~dst:(r 0) Op.Alu; mk 1 ~cond:I.Ne ~dst:(r 1) Op.Alu |]
  in
  let p = P.make ~entry:0 ~blocks:[ block body ] in
  let p', rep = T.opp16 p in
  Alcotest.(check int) "nothing converted" 0 rep.T.instrs_converted;
  Alcotest.(check int) "program unchanged" (P.instr_count p) (P.instr_count p')

(* --------------------------- critic pass -------------------------- *)

let profiled_program () =
  let app = { (Option.get (Workload.Apps.find "Maps")) with seed = 55 } in
  let program = Workload.Gen.program app in
  let path = Prog.Walk.path_for_instrs program ~seed:5 ~instrs:20_000 in
  let trace = Prog.Trace.expand program ~seed:5 path in
  let db = Profiler.Profile_run.profile trace in
  (program, db, path)

let test_critic_pass_applies () =
  let program, db, _ = profiled_program () in
  let program', report = CP.apply db program in
  Alcotest.(check bool) "sites applied" true (report.CP.sites_applied > 0);
  Alcotest.(check bool) "instrs converted" true (report.CP.instrs_converted > 0);
  Alcotest.(check bool) "cdps inserted" true (report.CP.cdp_inserted > 0);
  Alcotest.(check int) "instr count grows by cdp count"
    (P.instr_count program + report.CP.cdp_inserted)
    (P.instr_count program');
  Alcotest.(check bool) "code shrinks despite extra markers" true
    (P.code_size program' < P.code_size program)

let test_critic_pass_dataflow_preserved () =
  let program, db, _ = profiled_program () in
  let options = { CP.default_options with CP.mode = CP.Hoist_only } in
  let program', _ = CP.apply ~options db program in
  (* hoist-only: per-block RAW producer maps must be identical *)
  Array.iter2
    (fun (b : B.t) (b' : B.t) ->
      Alcotest.(check (list (triple int int int)))
        (Printf.sprintf "block %d dataflow" b.B.id)
        (producer_map b) (producer_map b'))
    (P.blocks program) (P.blocks program')

let test_critic_pass_work_preserved () =
  let program, db, path = profiled_program () in
  let program', _ = CP.apply db program in
  let t = Prog.Trace.expand program ~seed:5 path in
  let t' = Prog.Trace.expand program' ~seed:5 path in
  Alcotest.(check int) "same work across transform"
    (Prog.Trace.work_count t) (Prog.Trace.work_count t')

let test_critic_pass_all_or_nothing () =
  let program, db, _ = profiled_program () in
  let _, report = CP.apply db program in
  (* unconvertible sites are skipped entirely, never partially *)
  Alcotest.(check int) "considered = applied + rejections"
    report.CP.sites_considered
    (report.CP.sites_applied + report.CP.rejected_stale
    + report.CP.rejected_legality + report.CP.rejected_convertibility)

let test_critic_branches_mode () =
  let program, db, _ = profiled_program () in
  let options = { CP.default_options with CP.mode = CP.Branches } in
  let program', report = CP.apply ~options db program in
  Alcotest.(check bool) "switch branches inserted" true
    (report.CP.switch_branches_inserted >= 2 * report.CP.sites_applied);
  Alcotest.(check int) "no cdp in branches mode" 0 report.CP.cdp_inserted;
  Alcotest.(check bool) "program has body branches" true
    (let found = ref false in
     P.iter_instrs
       (fun _ i -> if i.I.opcode = Op.Branch then found := true)
       program';
     !found)

let test_critic_ideal_converts_more () =
  let program, db, _ = profiled_program () in
  let _, realistic = CP.apply db program in
  let _, ideal = CP.apply ~options:CP.ideal_options db program in
  Alcotest.(check bool) "ideal converts at least as much" true
    (ideal.CP.instrs_converted >= realistic.CP.instrs_converted)

let test_chain_tags () =
  let program, db, _ = profiled_program () in
  let program', _ = CP.apply db program in
  let tagged = ref 0 in
  P.iter_instrs
    (fun _ i -> if i.I.chain <> None then incr tagged)
    program';
  Alcotest.(check bool) "chain tags present" true (!tagged > 0);
  (* tags carry consistent positions *)
  P.iter_instrs
    (fun _ i ->
      match i.I.chain with
      | Some tag ->
        Alcotest.(check bool) "pos < len" true (tag.I.pos < tag.I.len)
      | None -> ())
    program'

(* ------------------------------ verify ----------------------------- *)

let test_verify_equivalent_blocks () =
  let b = chain_block () in
  Alcotest.(check bool) "block equals itself" true
    (Transform.Verify.dataflow_equivalent b b);
  let hoisted = H.apply b [ 0; 2; 4 ] in
  Alcotest.(check bool) "legal hoist is equivalent" true
    (Transform.Verify.dataflow_equivalent b hoisted)

let test_verify_detects_breakage () =
  let b = chain_block () in
  (* swapping instructions 0 and 1 changes who produces r0 for instr 1 *)
  let body = Array.copy b.B.body in
  let tmp = body.(0) in
  body.(0) <- body.(1);
  body.(1) <- tmp;
  let broken = B.with_body body b in
  Alcotest.(check bool) "illegal reorder detected" false
    (Transform.Verify.dataflow_equivalent b broken)

let test_verify_ignores_markers () =
  let b = chain_block () in
  let with_cdp =
    B.with_body (Array.append [| I.cdp ~uid:99 ~following:3 |] b.B.body) b
  in
  Alcotest.(check bool) "cdp markers are transparent" true
    (Transform.Verify.dataflow_equivalent b with_cdp)

let test_verify_whole_passes () =
  let program, db, _ = profiled_program () in
  List.iter
    (fun (label, pass) ->
      match Transform.Verify.check_pass pass program with
      | Ok _ -> ()
      | Error msg -> Alcotest.fail (label ^ ": " ^ msg))
    [
      ("critic", fun p -> (fst (CP.apply db p), ()));
      ( "hoist",
        fun p ->
          ( fst
              (CP.apply
                 ~options:{ CP.default_options with CP.mode = CP.Hoist_only }
                 db p),
            () ) );
      ( "macro",
        fun p ->
          ( fst
              (CP.apply
                 ~options:{ CP.default_options with CP.mode = CP.Fused_macro }
                 db p),
            () ) );
      ("opp16", fun p -> (fst (T.opp16 p), ()));
      ("compress", fun p -> (fst (T.compress p), ()));
    ]

let () =
  Alcotest.run "transform"
    [
      ( "hoist",
        [
          Alcotest.test_case "legal chain" `Quick test_legal_hoist;
          Alcotest.test_case "illegal raw" `Quick test_illegal_raw;
          Alcotest.test_case "illegal war" `Quick test_illegal_war;
          Alcotest.test_case "illegal memory" `Quick test_illegal_memory;
          Alcotest.test_case "regions disambiguate" `Quick
            test_memory_different_regions_ok;
          Alcotest.test_case "apply" `Quick test_hoist_apply;
          Alcotest.test_case "apply rejects" `Quick test_hoist_rejects_illegal;
        ] );
      ( "thumb",
        [
          Alcotest.test_case "convert run" `Quick test_convert_run;
          Alcotest.test_case "long runs split" `Quick test_convert_long_run_splits;
          Alcotest.test_case "min run" `Quick test_opp16_min_run;
          Alcotest.test_case "skips unconvertible" `Quick
            test_opp16_skips_unconvertible;
        ] );
      ( "verify",
        [
          Alcotest.test_case "equivalence" `Quick test_verify_equivalent_blocks;
          Alcotest.test_case "detects breakage" `Quick test_verify_detects_breakage;
          Alcotest.test_case "markers transparent" `Quick test_verify_ignores_markers;
          Alcotest.test_case "whole passes verified" `Quick test_verify_whole_passes;
        ] );
      ( "critic_pass",
        [
          Alcotest.test_case "applies" `Quick test_critic_pass_applies;
          Alcotest.test_case "dataflow preserved" `Quick
            test_critic_pass_dataflow_preserved;
          Alcotest.test_case "work preserved" `Quick test_critic_pass_work_preserved;
          Alcotest.test_case "all or nothing" `Quick test_critic_pass_all_or_nothing;
          Alcotest.test_case "branches mode" `Quick test_critic_branches_mode;
          Alcotest.test_case "ideal converts more" `Quick
            test_critic_ideal_converts_more;
          Alcotest.test_case "chain tags" `Quick test_chain_tags;
        ] );
    ]
