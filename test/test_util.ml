(* Unit and property tests for the Util library. *)

module Rng = Util.Rng
module Stats = Util.Stats
module Dist = Util.Dist

let check = Alcotest.check
let checkf = Alcotest.check (Alcotest.float 1e-9)

(* ------------------------------- Rng ------------------------------ *)

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  Alcotest.(check bool)
    "different seeds differ" false
    (Rng.bits64 a = Rng.bits64 b)

let test_rng_split_independent () =
  let a = Rng.create 7 in
  let child = Rng.split a in
  (* Draws from the child do not change the parent's future. *)
  let parent_copy = Rng.copy a in
  ignore (Rng.bits64 child);
  ignore (Rng.bits64 child);
  check Alcotest.int64 "parent unaffected by child" (Rng.bits64 parent_copy)
    (Rng.bits64 a)

let test_rng_int_bounds () =
  let rng = Rng.create 3 in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 17 in
    Alcotest.(check bool) "in [0,17)" true (v >= 0 && v < 17)
  done

let test_rng_int_rejects_nonpositive () =
  let rng = Rng.create 3 in
  Alcotest.check_raises "zero bound"
    (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Rng.int rng 0))

let test_rng_float_bounds () =
  let rng = Rng.create 4 in
  for _ = 1 to 10_000 do
    let v = Rng.float rng 2.5 in
    Alcotest.(check bool) "in [0,2.5)" true (v >= 0.0 && v < 2.5)
  done

let test_rng_uniformity () =
  let rng = Rng.create 5 in
  let buckets = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let b = Rng.int rng 10 in
    buckets.(b) <- buckets.(b) + 1
  done;
  Array.iter
    (fun c ->
      let expected = n / 10 in
      Alcotest.(check bool)
        "bucket within 5% of uniform" true
        (abs (c - expected) < expected / 20))
    buckets

let test_rng_chance_extremes () =
  let rng = Rng.create 6 in
  Alcotest.(check bool) "p=0 never" false (Rng.chance rng 0.0);
  Alcotest.(check bool) "p=1 always" true (Rng.chance rng 1.0)

let test_rng_geometric_mean () =
  let rng = Rng.create 8 in
  let n = 50_000 in
  let total = ref 0 in
  for _ = 1 to n do
    total := !total + Rng.geometric rng 0.5
  done;
  let mean = float_of_int !total /. float_of_int n in
  (* mean of Geom(0.5) failures = 1.0 *)
  Alcotest.(check bool) "geometric mean near 1" true (abs_float (mean -. 1.0) < 0.05)

let test_weighted_index () =
  let rng = Rng.create 9 in
  let counts = Array.make 3 0 in
  for _ = 1 to 30_000 do
    let i = Rng.weighted_index rng [| 1.0; 2.0; 7.0 |] in
    counts.(i) <- counts.(i) + 1
  done;
  Alcotest.(check bool) "heaviest bucket dominates" true
    (counts.(2) > counts.(1) && counts.(1) > counts.(0))

let test_shuffle_permutation () =
  let rng = Rng.create 10 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check
    Alcotest.(array int)
    "is a permutation" (Array.init 50 Fun.id) sorted

(* ------------------------------ Stats ----------------------------- *)

let test_mean () =
  checkf "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  checkf "empty mean" 0.0 (Stats.mean [])

let test_geomean () =
  checkf "geomean" 2.0 (Stats.geomean [ 1.0; 2.0; 4.0 ]);
  Alcotest.check_raises "rejects non-positive"
    (Invalid_argument "Stats.geomean: non-positive input") (fun () ->
      ignore (Stats.geomean [ 1.0; 0.0 ]))

let test_stddev () =
  checkf "constant has zero stddev" 0.0 (Stats.stddev [ 5.0; 5.0; 5.0 ]);
  checkf "known stddev" 2.0 (Stats.stddev [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ])

let test_percentile () =
  checkf "median" 2.0 (Stats.percentile 50.0 [ 1.0; 2.0; 3.0 ]);
  checkf "min" 1.0 (Stats.percentile 0.0 [ 3.0; 1.0; 2.0 ]);
  checkf "max" 3.0 (Stats.percentile 100.0 [ 3.0; 1.0; 2.0 ])

let test_speedup () =
  checkf "20% faster" 0.25 (Stats.speedup ~baseline:100.0 ~optimized:80.0)

let test_running () =
  let r = Stats.Running.create () in
  List.iter (Stats.Running.add r) [ 1.0; 2.0; 3.0; 4.0 ];
  check Alcotest.int "count" 4 (Stats.Running.count r);
  checkf "mean" 2.5 (Stats.Running.mean r);
  checkf "variance" 1.25 (Stats.Running.variance r)

(* ------------------------------- Dist ----------------------------- *)

let test_histogram () =
  let h = Dist.Histogram.create () in
  Dist.Histogram.add h 3;
  Dist.Histogram.add h 3;
  Dist.Histogram.addn h 5 4;
  check Alcotest.int "count" 6 (Dist.Histogram.count h);
  check Alcotest.int "get 3" 2 (Dist.Histogram.get h 3);
  check Alcotest.int "max value" 5 (Dist.Histogram.max_value h);
  checkf "fraction" (2.0 /. 6.0) (Dist.Histogram.fraction h 3);
  checkf "at least 4" (4.0 /. 6.0) (Dist.Histogram.fraction_at_least h 4);
  check
    Alcotest.(list (pair int int))
    "bins sorted" [ (3, 2); (5, 4) ] (Dist.Histogram.bins h);
  checkf "mean" ((6.0 +. 20.0) /. 6.0) (Dist.Histogram.mean h)

let test_cdf () =
  let c = Dist.Cdf.of_weighted [ (1.0, 1.0); (2.0, 1.0); (4.0, 2.0) ] in
  checkf "below support" 0.0 (Dist.Cdf.eval c 0.5);
  checkf "at 1" 0.25 (Dist.Cdf.eval c 1.0);
  checkf "between" 0.5 (Dist.Cdf.eval c 3.0);
  checkf "at end" 1.0 (Dist.Cdf.eval c 4.0);
  checkf "median value" 2.0 (Dist.Cdf.quantile c 0.5)

(* --------------------------- Text_table --------------------------- *)

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let test_table_render () =
  let s =
    Util.Text_table.render ~header:[ "a"; "b" ] [ [ "x"; "1" ]; [ "yy" ] ]
  in
  Alcotest.(check bool) "contains header" true
    (String.length s > 0 && String.sub s 0 1 = "a");
  (* the ragged row is padded rather than raising *)
  Alcotest.(check bool) "mentions yy" true (contains ~needle:"yy" s)

let test_bar_chart () =
  let c = Util.Text_table.bar_chart [ ("a", 0.1); ("bb", -0.05); ("c", 0.0) ] in
  Alcotest.(check bool) "labels present" true
    (contains ~needle:"bb" c && contains ~needle:"10.0%" c);
  Alcotest.(check bool) "negative marked" true (contains ~needle:"-" c);
  (* all-zero input must not divide by zero *)
  let z = Util.Text_table.bar_chart [ ("x", 0.0) ] in
  Alcotest.(check bool) "zero chart renders" true (String.length z > 0)

(* ----------------------------- qcheck ----------------------------- *)

let prop_rng_int_in_range =
  QCheck.Test.make ~name:"rng int stays in range" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let rng = Rng.create seed in
      let v = Rng.int rng bound in
      v >= 0 && v < bound)

let prop_percentile_monotone =
  QCheck.Test.make ~name:"percentile is monotone in p" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 20) (float_bound_exclusive 100.0))
    (fun xs ->
      QCheck.assume (xs <> []);
      Stats.percentile 25.0 xs <= Stats.percentile 75.0 xs)

let prop_cdf_bounded =
  QCheck.Test.make ~name:"cdf values in [0,1]" ~count:200
    QCheck.(
      pair
        (list_of_size Gen.(int_range 1 20)
           (pair (float_bound_exclusive 100.0) (float_range 0.1 5.0)))
        (float_bound_exclusive 200.0))
    (fun (pts, x) ->
      let c = Dist.Cdf.of_weighted pts in
      let v = Dist.Cdf.eval c x in
      v >= 0.0 && v <= 1.0)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_rng_int_in_range; prop_percentile_monotone; prop_cdf_bounded ]

(* --------------------------- Atomic_io ---------------------------- *)

(* The durable write's contract: whatever IO operation a crash lands
   on, a reader afterwards sees the complete old content or the
   complete new content — never a tear, never an absence.  A contained
   ENOSPC must additionally leave the OLD content (the caller was told
   the write failed). *)
let test_atomic_write_crash_points () =
  let dir = Filename.temp_file "critics-aio" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun e -> Sys.remove (Filename.concat dir e))
        (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () ->
      let path = Filename.concat dir "state" in
      let old_content = "old content, fully intact" in
      let new_content = "NEW content, rather longer than the old one" in
      (* Learn the op count of one durable write. *)
      let total =
        let count = ref 0 in
        let inject ~op:_ =
          incr count;
          Util.Atomic_io.Proceed
        in
        Util.Atomic_io.write ~durable:true ~inject path old_content;
        !count
      in
      Alcotest.(check bool) "durable write has ops" true (total >= 3);
      for at = 0 to total - 1 do
        List.iteri
          (fun case action ->
            Util.Atomic_io.write ~durable:true path old_content;
            let fired = ref false in
            let count = ref 0 in
            let inject ~op:_ =
              let n = !count in
              incr count;
              if n = at && not !fired then begin
                fired := true;
                action
              end
              else Util.Atomic_io.Proceed
            in
            let crashed =
              match
                Util.Atomic_io.write ~durable:true ~inject path new_content
              with
              | () -> false
              | exception Util.Atomic_io.Injected_crash _ -> true
              | exception Unix.Unix_error (Unix.ENOSPC, _, _) -> false
            in
            let label what =
              Printf.sprintf "op %d case %d: %s" at case what
            in
            let got = Util.Atomic_io.read_file path in
            Alcotest.(check bool)
              (label "old or new, never torn")
              true
              (got = old_content || got = new_content);
            (* A write that returned success must show the new bytes.
               A contained failure may show either (an ENOSPC after the
               rename reports failure for an install that landed — the
               ambiguity every commit protocol has) but never a tear,
               which the check above already enforced. *)
            if (not crashed) && not !fired then
              Alcotest.(check string)
                (label "completed write installed")
                new_content got;
            ignore (Util.Atomic_io.sweep_tmp dir))
          [
            Util.Atomic_io.Crash;
            Util.Atomic_io.Torn 4;
            Util.Atomic_io.Fail 2;
          ]
      done)

let test_atomic_write_sweeps_crash_tmp () =
  let dir = Filename.temp_file "critics-aio" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun e -> Sys.remove (Filename.concat dir e))
        (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () ->
      let path = Filename.concat dir "state" in
      let inject ~op =
        if op = "aio.write" then Util.Atomic_io.Torn 2
        else Util.Atomic_io.Proceed
      in
      (match Util.Atomic_io.write ~durable:true ~inject path "payload" with
      | () -> Alcotest.fail "injected crash did not fire"
      | exception Util.Atomic_io.Injected_crash _ -> ());
      (* The simulated crash leaves its torn tmp, exactly like a real
         one; the next startup's sweep collects it. *)
      Alcotest.(check int) "torn tmp left behind" 1
        (Util.Atomic_io.sweep_tmp dir);
      Alcotest.(check int) "sweep is idempotent" 0
        (Util.Atomic_io.sweep_tmp dir))

let () =
  Alcotest.run "util"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int rejects <=0" `Quick test_rng_int_rejects_nonpositive;
          Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
          Alcotest.test_case "uniformity" `Slow test_rng_uniformity;
          Alcotest.test_case "chance extremes" `Quick test_rng_chance_extremes;
          Alcotest.test_case "geometric mean" `Slow test_rng_geometric_mean;
          Alcotest.test_case "weighted index" `Quick test_weighted_index;
          Alcotest.test_case "shuffle permutes" `Quick test_shuffle_permutation;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean" `Quick test_mean;
          Alcotest.test_case "geomean" `Quick test_geomean;
          Alcotest.test_case "stddev" `Quick test_stddev;
          Alcotest.test_case "percentile" `Quick test_percentile;
          Alcotest.test_case "speedup" `Quick test_speedup;
          Alcotest.test_case "running" `Quick test_running;
        ] );
      ( "dist",
        [
          Alcotest.test_case "histogram" `Quick test_histogram;
          Alcotest.test_case "cdf" `Quick test_cdf;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "bar chart" `Quick test_bar_chart;
        ] );
      ( "atomic-io",
        [
          Alcotest.test_case "crash at every IO op" `Quick
            test_atomic_write_crash_points;
          Alcotest.test_case "crash tmp swept" `Quick
            test_atomic_write_sweeps_crash_tmp;
        ] );
      ("properties", qcheck_cases);
    ]
